#pragma once
/// \file dvfs.hpp
/// DVFS operating points and the chip power model used by the §3.1
/// experiments (task criticality / Runtime Support Unit).
///
/// Power model: P_core = C_eff · V² · f  +  P_leak(V), the standard CMOS
/// first-order model. Constants are chosen to land in the ballpark of a
/// ~2 GHz embedded-class core (≈1 W dynamic at nominal), which is the
/// regime the paper's 32-core chip targets; only *relative* numbers matter
/// for the reproduced claims.

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace raa::sim {

/// One voltage/frequency pair.
struct OperatingPoint {
  double freq_ghz = 2.0;
  double voltage = 1.0;

  friend bool operator==(const OperatingPoint&,
                         const OperatingPoint&) = default;
};

/// First-order CMOS power model.
struct PowerModel {
  /// Effective switched capacitance such that dynamic power is
  /// C_eff · V² · f(GHz) watts. 0.5 → 1 W at 2 GHz / 1 V.
  double c_eff = 0.5;
  /// Leakage at 1 V, scaled linearly with V (good enough first order).
  double leak_w_at_1v = 0.15;

  double dynamic_w(const OperatingPoint& op) const noexcept {
    return c_eff * op.voltage * op.voltage * op.freq_ghz;
  }
  double leakage_w(const OperatingPoint& op) const noexcept {
    return leak_w_at_1v * op.voltage;
  }
  /// Busy-core power.
  double busy_w(const OperatingPoint& op) const noexcept {
    return dynamic_w(op) + leakage_w(op);
  }
  /// Idle-core power (clock-gated: leakage only).
  double idle_w(const OperatingPoint& op) const noexcept {
    return leakage_w(op);
  }
};

/// Discrete table of operating points, ascending by frequency.
class DvfsTable {
 public:
  explicit DvfsTable(std::vector<OperatingPoint> points)
      : points_(std::move(points)) {
    RAA_CHECK(!points_.empty());
    for (std::size_t i = 1; i < points_.size(); ++i)
      RAA_CHECK(points_[i - 1].freq_ghz < points_[i].freq_ghz);
  }

  /// The 5-point table used throughout the experiments:
  /// 0.8/0.70, 1.2/0.80, 1.6/0.90, 2.0/1.00 (nominal), 2.4/1.15 (turbo).
  static DvfsTable typical() {
    return DvfsTable{{{0.8, 0.70},
                      {1.2, 0.80},
                      {1.6, 0.90},
                      {2.0, 1.00},
                      {2.4, 1.15}}};
  }

  const std::vector<OperatingPoint>& points() const noexcept {
    return points_;
  }
  const OperatingPoint& lowest() const noexcept { return points_.front(); }
  const OperatingPoint& highest() const noexcept { return points_.back(); }
  /// Nominal = one step below turbo for tables with >1 point.
  const OperatingPoint& nominal() const noexcept {
    return points_.size() > 1 ? points_[points_.size() - 2] : points_.front();
  }

  /// Highest point with freq <= f (or the lowest point).
  const OperatingPoint& at_most(double freq_ghz) const noexcept {
    const OperatingPoint* best = &points_.front();
    for (const auto& p : points_)
      if (p.freq_ghz <= freq_ghz) best = &p;
    return *best;
  }

 private:
  std::vector<OperatingPoint> points_;
};

/// Machine description for TDG replay.
struct MachineConfig {
  unsigned cores = 32;
  DvfsTable dvfs = DvfsTable::typical();
  PowerModel power{};
  /// Chip-level budget; the default admits all cores at nominal but not all
  /// at turbo — exactly the regime where criticality-aware boosting pays.
  double power_budget_w = 0.0;  ///< 0 = cores × busy_w(nominal)

  double effective_budget_w() const noexcept {
    return power_budget_w > 0.0
               ? power_budget_w
               : static_cast<double>(cores) * power.busy_w(dvfs.nominal());
  }
};

}  // namespace raa::sim
