#pragma once
/// \file tdg_sim.hpp
/// Discrete-event replay of a Task Dependency Graph on a modelled manycore.
///
/// This is the TaskSim-style substrate of the reproduction: every
/// scalability or DVFS claim in the paper is evaluated by replaying a TDG
/// (captured from the real runtime or built synthetically) on a machine
/// model. The replay is a classic list scheduler:
///
///   * a task becomes *ready* when all predecessors finished;
///   * idle cores pick the ready task with the highest priority;
///   * task duration = cost / frequency (cost is in cycles-at-1GHz, so
///     durations are in nanoseconds);
///   * a FrequencyGovernor decides each task's operating point and models
///     the cost of reconfiguring the core's frequency (this is where the
///     software-DVFS vs hardware-RSU distinction lives, §3.1).
///
/// Energy accounting: busy cores consume dynamic+leakage power at their
/// operating point; idle cores leak at nominal voltage.

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "runtime/graph.hpp"
#include "simcore/dvfs.hpp"

namespace raa::sim {

/// Per-task frequency decision plus the stall the switch costs on this core.
struct FreqDecision {
  OperatingPoint op;
  double stall_ns = 0.0;
};

/// Chooses operating points at task start; see rsu/ for implementations.
class FrequencyGovernor {
 public:
  virtual ~FrequencyGovernor() = default;

  /// Called once before the replay starts.
  virtual void prepare(const tdg::Graph& graph, const MachineConfig& machine) {
    (void)graph;
    (void)machine;
  }

  /// Decide the operating point for `task` starting on `core` at `now_ns`.
  virtual FreqDecision on_task_start(tdg::NodeId task, unsigned core,
                                     double now_ns) = 0;

  /// Called when `task` finishes (to release budget, etc.).
  virtual void on_task_end(tdg::NodeId task, unsigned core, double now_ns) {
    (void)task;
    (void)core;
    (void)now_ns;
  }
};

/// Runs everything at the nominal operating point with zero switch cost.
class NominalGovernor final : public FrequencyGovernor {
 public:
  void prepare(const tdg::Graph&, const MachineConfig& machine) override {
    op_ = machine.dvfs.nominal();
  }
  FreqDecision on_task_start(tdg::NodeId, unsigned, double) override {
    return {op_, 0.0};
  }

 private:
  OperatingPoint op_{};
};

/// Task priority for the ready queue; higher runs first.
using PriorityFn = std::function<double(const tdg::Graph&, tdg::NodeId)>;

/// FIFO: earlier-created tasks first (the id encodes creation order).
PriorityFn priority_fifo();
/// CATS-style: tasks with larger bottom level first.
PriorityFn priority_bottom_level();

/// Where/when one task ran.
struct PlacedTask {
  tdg::NodeId task = tdg::kNoNode;
  unsigned core = 0;
  double start_ns = 0.0;
  double end_ns = 0.0;
  OperatingPoint op;
  double stall_ns = 0.0;
};

/// Replay outcome.
struct ReplayResult {
  double makespan_ns = 0.0;
  double energy_j = 0.0;
  double busy_ns = 0.0;          ///< sum over cores of busy time
  double stall_ns = 0.0;         ///< total reconfiguration stalls
  std::uint64_t freq_switches = 0;
  std::vector<PlacedTask> timeline;  ///< one entry per task

  double edp() const noexcept { return energy_j * makespan_ns * 1e-9; }
  /// Average core utilisation in [0, 1].
  double utilization(unsigned cores) const noexcept {
    return makespan_ns > 0.0
               ? busy_ns / (makespan_ns * static_cast<double>(cores))
               : 0.0;
  }
};

/// Replay `graph` on `machine`. `priority` orders the ready queue;
/// `governor` assigns operating points (nullptr = NominalGovernor).
ReplayResult replay(const tdg::Graph& graph, const MachineConfig& machine,
                    const PriorityFn& priority = priority_fifo(),
                    FrequencyGovernor* governor = nullptr);

}  // namespace raa::sim
