#include "simcore/tdg_sim.hpp"

#include <algorithm>
#include <memory>
#include <queue>

#include "common/check.hpp"

namespace raa::sim {

PriorityFn priority_fifo() {
  return [](const tdg::Graph&, tdg::NodeId v) {
    return -static_cast<double>(v);
  };
}

PriorityFn priority_bottom_level() {
  // Bottom levels are cached per graph instance (the replay uses a single
  // graph; recomputing per query would be quadratic).
  struct Cache {
    const tdg::Graph* graph = nullptr;
    std::vector<double> levels;
  };
  auto cache = std::make_shared<Cache>();
  return [cache](const tdg::Graph& g, tdg::NodeId v) {
    if (cache->graph != &g) {
      cache->graph = &g;
      cache->levels = g.bottom_levels();
    }
    return cache->levels[v];
  };
}

namespace {

struct ReadyEntry {
  double priority = 0.0;
  tdg::NodeId task = tdg::kNoNode;

  // Max-heap by priority; ties broken toward the smaller id so replays are
  // fully deterministic.
  bool operator<(const ReadyEntry& o) const noexcept {
    if (priority != o.priority) return priority < o.priority;
    return task > o.task;
  }
};

struct Completion {
  double end_ns = 0.0;
  unsigned core = 0;
  tdg::NodeId task = tdg::kNoNode;

  bool operator>(const Completion& o) const noexcept {
    if (end_ns != o.end_ns) return end_ns > o.end_ns;
    return task > o.task;
  }
};

}  // namespace

ReplayResult replay(const tdg::Graph& graph, const MachineConfig& machine,
                    const PriorityFn& priority, FrequencyGovernor* governor) {
  RAA_CHECK(machine.cores > 0);
  NominalGovernor nominal;
  if (governor == nullptr) governor = &nominal;
  governor->prepare(graph, machine);

  ReplayResult result;
  const std::size_t n = graph.node_count();
  result.timeline.resize(n);
  if (n == 0) return result;

  std::vector<std::uint32_t> indeg(n);
  for (std::size_t v = 0; v < n; ++v)
    indeg[v] = static_cast<std::uint32_t>(graph.predecessors(
        static_cast<tdg::NodeId>(v)).size());

  std::priority_queue<ReadyEntry> ready;
  for (std::size_t v = 0; v < n; ++v)
    if (indeg[v] == 0) {
      const auto id = static_cast<tdg::NodeId>(v);
      ready.push({priority(graph, id), id});
    }

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      running;
  // Idle cores, smallest id first for determinism.
  std::priority_queue<unsigned, std::vector<unsigned>, std::greater<>> idle;
  for (unsigned c = 0; c < machine.cores; ++c) idle.push(c);

  std::vector<OperatingPoint> core_op(machine.cores, machine.dvfs.nominal());
  double now = 0.0;
  double busy_energy_j = 0.0;
  std::size_t completed = 0;

  while (completed < n) {
    // Start as many ready tasks as there are idle cores.
    while (!ready.empty() && !idle.empty()) {
      const ReadyEntry entry = ready.top();
      ready.pop();
      const unsigned core = idle.top();
      idle.pop();

      const FreqDecision dec = governor->on_task_start(entry.task, core, now);
      RAA_CHECK(dec.op.freq_ghz > 0.0);
      if (!(dec.op == core_op[core])) {
        ++result.freq_switches;
        core_op[core] = dec.op;
      }
      const double cost = graph.node(entry.task).cost;
      const double exec_ns = cost / dec.op.freq_ghz;
      const double end_ns = now + dec.stall_ns + exec_ns;

      PlacedTask& placed = result.timeline[entry.task];
      placed = {entry.task, core, now, end_ns, dec.op, dec.stall_ns};

      result.busy_ns += dec.stall_ns + exec_ns;
      result.stall_ns += dec.stall_ns;
      busy_energy_j +=
          machine.power.busy_w(dec.op) * (dec.stall_ns + exec_ns) * 1e-9;
      running.push({end_ns, core, entry.task});
    }

    RAA_CHECK_MSG(!running.empty(), "deadlock: no ready task, none running");
    const Completion done = running.top();
    running.pop();
    now = done.end_ns;
    governor->on_task_end(done.task, done.core, now);
    idle.push(done.core);
    ++completed;

    for (const tdg::NodeId succ : graph.successors(done.task)) {
      RAA_CHECK(indeg[succ] > 0);
      if (--indeg[succ] == 0) ready.push({priority(graph, succ), succ});
    }
  }

  result.makespan_ns = now;
  // Idle leakage: every core-nanosecond not spent busy leaks at nominal V.
  const double total_core_ns =
      result.makespan_ns * static_cast<double>(machine.cores);
  const double idle_ns = std::max(0.0, total_core_ns - result.busy_ns);
  const double idle_energy_j =
      machine.power.idle_w(machine.dvfs.nominal()) * idle_ns * 1e-9;
  result.energy_j = busy_energy_j + idle_energy_j;
  return result;
}

}  // namespace raa::sim
